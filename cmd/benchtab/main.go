// Command benchtab regenerates the paper's evaluation artifacts: Tables 1-3
// and Figures 11-14.
//
// Usage:
//
//	benchtab -all                  # everything
//	benchtab -table 1              # jBYTEmark dynamic counts
//	benchtab -table 2              # SPECjvm98 dynamic counts
//	benchtab -table 3              # compilation time breakdown
//	benchtab -figure 13            # jBYTEmark performance improvement
//	benchtab -machine ppc64        # switch the machine model
//	benchtab -noprofile            # static frequency estimates only
package main

import (
	"flag"
	"fmt"
	"os"

	"signext/internal/bench"
	"signext/internal/ir"
	"signext/internal/workloads"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1, 2 or 3")
	figure := flag.Int("figure", 0, "regenerate figure 11, 12, 13 or 14")
	all := flag.Bool("all", false, "regenerate every table and figure")
	machine := flag.String("machine", "ia64", "machine model: ia64 or ppc64")
	noprofile := flag.Bool("noprofile", false, "disable interpreter branch profiles")
	flag.Parse()

	mach := ir.IA64
	if *machine == "ppc64" {
		mach = ir.PPC64
	} else if *machine != "ia64" {
		fmt.Fprintln(os.Stderr, "benchtab: unknown machine", *machine)
		os.Exit(2)
	}
	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{Machine: mach, UseProfile: !*noprofile}
	var jb, spec *bench.SuiteResult
	needJB := *all || *table == 1 || *table == 3 || *figure == 11 || *figure == 13
	needSpec := *all || *table == 2 || *table == 3 || *figure == 12 || *figure == 14

	run := func(ws []workloads.Workload, label string) *bench.SuiteResult {
		fmt.Fprintf(os.Stderr, "benchtab: running %s (%d workloads x %d variants)...\n",
			label, len(ws), 12)
		r, err := bench.RunSuite(ws, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		if len(r.Mismatch) > 0 {
			fmt.Fprintln(os.Stderr, "benchtab: OUTPUT MISMATCH (miscompile):", r.Mismatch)
			os.Exit(1)
		}
		return r
	}
	if needJB {
		jb = run(workloads.JBYTEmark(), "jBYTEmark")
	}
	if needSpec {
		spec = run(workloads.SPECjvm98(), "SPECjvm98")
	}

	show := func(cond bool, s string) {
		if cond {
			fmt.Println(s)
		}
	}
	show(*all || *table == 1,
		jbOr(jb, func(r *bench.SuiteResult) string {
			return r.FormatCountTable("Table 1. Dynamic counts of remaining 32-bit sign extensions for jBYTEmark")
		}))
	show(*all || *table == 2,
		jbOr(spec, func(r *bench.SuiteResult) string {
			return r.FormatCountTable("Table 2. Dynamic counts of remaining 32-bit sign extensions for SPECjvm98")
		}))
	show(*all || *figure == 11,
		jbOr(jb, func(r *bench.SuiteResult) string { return r.FormatPctFigure("Figure 11 (jBYTEmark)") }))
	show(*all || *figure == 12,
		jbOr(spec, func(r *bench.SuiteResult) string { return r.FormatPctFigure("Figure 12 (SPECjvm98)") }))
	show(*all || *figure == 13,
		jbOr(jb, func(r *bench.SuiteResult) string { return r.FormatPerfFigure("Figure 13 (jBYTEmark)") }))
	show(*all || *figure == 14,
		jbOr(spec, func(r *bench.SuiteResult) string { return r.FormatPerfFigure("Figure 14 (SPECjvm98)") }))
	if *all || *table == 3 {
		var rs []*bench.SuiteResult
		if spec != nil {
			rs = append(rs, spec)
		}
		if jb != nil {
			rs = append(rs, jb)
		}
		fmt.Println(bench.FormatTimingTable(rs))
	}
}

func jbOr(r *bench.SuiteResult, f func(*bench.SuiteResult) string) string {
	if r == nil {
		return ""
	}
	return f(r)
}
