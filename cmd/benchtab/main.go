// Command benchtab regenerates the paper's evaluation artifacts: Tables 1-3
// and Figures 11-14, plus the compile-driver benchmark artifact.
//
// Usage:
//
//	benchtab -all                        # everything, to stdout
//	benchtab -all -o results.txt         # everything, to a file
//	benchtab -table 1                    # jBYTEmark dynamic counts
//	benchtab -table 2                    # SPECjvm98 dynamic counts
//	benchtab -table 3                    # compilation time breakdown
//	benchtab -figure 13                  # jBYTEmark performance improvement
//	benchtab -machine ppc64              # switch the machine model
//	benchtab -noprofile                  # static frequency estimates only
//	benchtab -parallel 8                 # compile-driver worker count
//	benchtab -compilebench -o BENCH_compile.json   # compile-time benchmark (JSON)
//	benchtab -compilebench -cache -o BENCH_compile.json  # plus cold/warm cache pass
//	benchtab -compilebench -tiered -o BENCH_compile.json # plus tiered-runtime pass
//	benchtab -compilebench -interpbench -tiered -o BENCH_compile.json  # plus interpreter
//	   dispatch microbenchmark; the tiered pass then uses the measured penalty
//	benchtab -compilebench -peep -o BENCH_compile.json   # plus rule-table peephole pass
//	benchtab -servebench -o BENCH_serve.json       # daemon load benchmark (JSON)
//	benchtab -validate BENCH_compile.json          # sanity-check an artifact
//	benchtab -validate BENCH_serve.json            # (kind is detected)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"signext/internal/bench"
	"signext/internal/ir"
	"signext/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	flag.SetOutput(stderr)
	table := flag.Int("table", 0, "regenerate table 1, 2 or 3")
	figure := flag.Int("figure", 0, "regenerate figure 11, 12, 13 or 14")
	all := flag.Bool("all", false, "regenerate every table and figure")
	machine := flag.String("machine", "ia64", "machine model: ia64 or ppc64")
	noprofile := flag.Bool("noprofile", false, "disable interpreter branch profiles")
	out := flag.String("o", "", "write output to this file instead of stdout")
	parallel := flag.Int("parallel", 0, "compile-driver worker count (0 = all CPUs, 1 = sequential)")
	compilebench := flag.Bool("compilebench", false, "run the compile-driver benchmark and emit the BENCH_compile.json artifact")
	repeats := flag.Int("repeats", 3, "compile-benchmark timing repeats (minimum wall kept)")
	useCache := flag.Bool("cache", false, "compile-benchmark: add a cold/warm compile-cache pass per workload")
	cacheMB := flag.Int64("cache-mb", 64, "compile cache capacity in MiB (with -cache)")
	useTiered := flag.Bool("tiered", false, "compile-benchmark: add a tiered-runtime pass per workload")
	hotThreshold := flag.Int64("hot-threshold", 0, "tiered promotion threshold (0 = default)")
	interpbench := flag.Bool("interpbench", false, "compile-benchmark: add the interpreter dispatch microbenchmark (switch vs threaded walls, measured tier penalty)")
	usePeep := flag.Bool("peep", false, "compile-benchmark: add a rule-table peephole pass per workload (rewrite counts, cycle delta, identity)")
	invocations := flag.Int("invocations", 0, "tiered invocations per workload (0 = default 4)")
	servebench := flag.Bool("servebench", false, "run the compile-daemon load benchmark and emit the BENCH_serve.json artifact")
	clients := flag.Int("clients", 0, "servebench concurrent clients (0 = default 8)")
	requests := flag.Int("requests", 0, "servebench load-phase requests (0 = default 200)")
	programs := flag.Int("programs", 0, "servebench distinct generated programs (0 = default 12)")
	cacheDir := flag.String("cache-dir", "", "servebench daemon disk cache directory (empty: temp dir)")
	validate := flag.String("validate", "", "validate an existing BENCH_*.json artifact and exit")
	if err := flag.Parse(args); err != nil {
		return 2
	}
	if flag.NArg() > 0 {
		fmt.Fprintln(stderr, "benchtab: unexpected arguments:", flag.Args())
		return 2
	}

	mach := ir.IA64
	if *machine == "ppc64" {
		mach = ir.PPC64
	} else if *machine != "ia64" {
		fmt.Fprintln(stderr, "benchtab: unknown machine", *machine)
		return 2
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		// Artifact kind is detected by a field unique to the serve
		// benchmark; everything else validates as a compile artifact.
		if bytes.Contains(data, []byte(`"throughput_rps"`)) {
			s, err := bench.ValidateServeBenchJSON(data)
			if err != nil {
				fmt.Fprintln(stderr, "benchtab:", err)
				return 1
			}
			fmt.Fprintf(stdout, "benchtab: %s OK: %d requests over %d programs from %d clients, p50 %.2fms p99 %.2fms, hit rate %.2f, %d degraded, identity pass\n",
				*validate, s.Requests, s.Programs, s.Clients,
				float64(s.P50NS)/1e6, float64(s.P99NS)/1e6, s.HitRate, s.DegradedSeen)
			return 0
		}
		r, err := bench.ValidateCompileBenchJSON(data)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchtab: %s OK: %d workloads, %s/%s, parallelism %d on %d CPUs, speedup %.2fx\n",
			*validate, len(r.Workloads), r.Suite, r.Machine, r.Parallelism, r.NumCPU, r.Speedup)
		if r.CacheEnabled {
			fmt.Fprintf(stdout, "benchtab: cache: warm speedup %.2fx, hit rate %.2f, identity pass\n",
				r.WarmSpeedup, r.CacheStats.HitRate())
		}
		if r.TieredEnabled {
			fmt.Fprintf(stdout, "benchtab: tiered: %d tier-ups over %d invocations, steady-state speedup %.2fx, identity pass\n",
				r.TotalTierUps, r.TieredInvocations, r.TierSpeedup)
		}
		if r.InterpEnabled {
			fmt.Fprintf(stdout, "benchtab: interp: threaded dispatch %.2fx over switch, measured tier penalty %.2fx, identity pass\n",
				r.InterpSpeedup, r.MeasuredPenalty)
		}
		if r.PeepEnabled {
			fmt.Fprintf(stdout, "benchtab: peep: %d rewrites, cycle gain %.4fx, identity pass\n",
				r.TotalRewrites, r.PeepCycleGain)
		}
		return 0
	}

	// Output sink: stdout by default, -o path otherwise.
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "benchtab:", err)
			}
		}()
		w = f
	}

	if *servebench {
		dir := *cacheDir
		if dir == "" {
			d, err := os.MkdirTemp("", "servebench")
			if err != nil {
				fmt.Fprintln(stderr, "benchtab:", err)
				return 1
			}
			defer os.RemoveAll(d)
			dir = d
		}
		fmt.Fprintln(stderr, "benchtab: daemon load benchmark...")
		r, err := bench.ServeBench(bench.ServeBenchOptions{
			Machine: mach, Clients: *clients, Requests: *requests,
			Programs: *programs, CacheBytes: *cacheMB << 20, CacheDir: dir,
		})
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		if err := r.Validate(); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchtab: %d req, %.0f req/s, p50 %.2fms p99 %.2fms, hit rate %.2f, %d degraded, identity pass\n",
			r.Requests, r.ThroughputRPS, float64(r.P50NS)/1e6, float64(r.P99NS)/1e6, r.HitRate, r.DegradedSeen)
		return 0
	}

	if *compilebench {
		fmt.Fprintf(stderr, "benchtab: compile benchmark (%d workloads, %d repeats)...\n",
			len(workloads.All()), *repeats)
		r, err := bench.CompileBench(workloads.All(), bench.CompileBenchOptions{
			Machine: mach, UseProfile: !*noprofile,
			Parallelism: *parallel, Repeats: *repeats,
			Cache: *useCache, CacheBytes: *cacheMB << 20,
			Tiered: *useTiered, TieredInvocations: *invocations, HotThreshold: *hotThreshold,
			Interp: *interpbench, Peep: *usePeep,
		})
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		if err := r.Validate(); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		fmt.Fprintf(stderr, "benchtab: compile speedup %.2fx at parallelism %d (%d CPUs)\n",
			r.Speedup, r.Parallelism, r.NumCPU)
		if r.CacheEnabled {
			fmt.Fprintf(stderr, "benchtab: warm-start speedup %.2fx, hit rate %.2f, identity pass\n",
				r.WarmSpeedup, r.CacheStats.HitRate())
		}
		if r.TieredEnabled {
			fmt.Fprintf(stderr, "benchtab: tiered: %d tier-ups, steady-state speedup %.2fx, identity pass\n",
				r.TotalTierUps, r.TierSpeedup)
		}
		if r.InterpEnabled {
			fmt.Fprintf(stderr, "benchtab: interp: threaded dispatch %.2fx over switch, measured tier penalty %.2fx, identity pass\n",
				r.InterpSpeedup, r.MeasuredPenalty)
		}
		if r.PeepEnabled {
			fmt.Fprintf(stderr, "benchtab: peep: %d rewrites, cycle gain %.4fx, identity pass\n",
				r.TotalRewrites, r.PeepCycleGain)
		}
		return 0
	}

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		return 2
	}

	opts := bench.Options{Machine: mach, UseProfile: !*noprofile, Parallelism: *parallel}
	var jb, spec *bench.SuiteResult
	needJB := *all || *table == 1 || *table == 3 || *figure == 11 || *figure == 13
	needSpec := *all || *table == 2 || *table == 3 || *figure == 12 || *figure == 14

	suite := func(ws []workloads.Workload, label string) (*bench.SuiteResult, error) {
		fmt.Fprintf(stderr, "benchtab: running %s (%d workloads x %d variants)...\n",
			label, len(ws), 12)
		r, err := bench.RunSuite(ws, opts)
		if err != nil {
			return nil, err
		}
		if len(r.Mismatch) > 0 {
			return nil, fmt.Errorf("OUTPUT MISMATCH (miscompile): %v", r.Mismatch)
		}
		return r, nil
	}
	var err error
	if needJB {
		if jb, err = suite(workloads.JBYTEmark(), "jBYTEmark"); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
	}
	if needSpec {
		if spec, err = suite(workloads.SPECjvm98(), "SPECjvm98"); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
	}

	show := func(cond bool, s string) {
		if cond {
			fmt.Fprintln(w, s)
		}
	}
	show(*all || *table == 1,
		jbOr(jb, func(r *bench.SuiteResult) string {
			return r.FormatCountTable("Table 1. Dynamic counts of remaining 32-bit sign extensions for jBYTEmark")
		}))
	show(*all || *table == 2,
		jbOr(spec, func(r *bench.SuiteResult) string {
			return r.FormatCountTable("Table 2. Dynamic counts of remaining 32-bit sign extensions for SPECjvm98")
		}))
	show(*all || *figure == 11,
		jbOr(jb, func(r *bench.SuiteResult) string { return r.FormatPctFigure("Figure 11 (jBYTEmark)") }))
	show(*all || *figure == 12,
		jbOr(spec, func(r *bench.SuiteResult) string { return r.FormatPctFigure("Figure 12 (SPECjvm98)") }))
	show(*all || *figure == 13,
		jbOr(jb, func(r *bench.SuiteResult) string { return r.FormatPerfFigure("Figure 13 (jBYTEmark)") }))
	show(*all || *figure == 14,
		jbOr(spec, func(r *bench.SuiteResult) string { return r.FormatPerfFigure("Figure 14 (SPECjvm98)") }))
	if *all || *table == 3 {
		var rs []*bench.SuiteResult
		if spec != nil {
			rs = append(rs, spec)
		}
		if jb != nil {
			rs = append(rs, jb)
		}
		fmt.Fprintln(w, bench.FormatTimingTable(rs))
	}
	return 0
}

func jbOr(r *bench.SuiteResult, f func(*bench.SuiteResult) string) string {
	if r == nil {
		return ""
	}
	return f(r)
}
