package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

func TestValidateGoldenOK(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-validate", "testdata/valid.json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
	path := filepath.Join("testdata", "validate_ok.golden")
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if stdout.String() != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, stdout.String(), want)
	}
}

// TestValidateGoldenPeep pins the -validate summary of a peep-enabled
// artifact: the rewrite total, cycle gain and identity line.
func TestValidateGoldenPeep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-validate", "testdata/valid_peep.json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected stderr: %s", stderr.String())
	}
	path := filepath.Join("testdata", "validate_peep.golden")
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if stdout.String() != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, stdout.String(), want)
	}
}

// TestValidateRejectsCorruption pins the contract satellite 4 asks for: every
// corruption class exits 1 with a single one-line "benchtab:" diagnostic on
// stderr and nothing on stdout.
func TestValidateRejectsCorruption(t *testing.T) {
	cases := []struct {
		file string
		diag string // substring expected in the diagnostic
	}{
		{"bad_phasewalls.json", "phase walls sum"},
		{"bad_totals.json", "do not match workload sums"},
		{"bad_identical.json", "NOT identical"},
		{"bad_speedup.json", "aggregate speedup"},
		{"bad_peep_regression.json", "REGRESSED cycles"},
		{"malformed.json", "bad JSON"},
		{"no-such-artifact.json", "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run([]string{"-validate", filepath.Join("testdata", tc.file)}, &stdout, &stderr)
			if code != 1 {
				t.Fatalf("exit code %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("corrupted artifact must print nothing on stdout, got %q", stdout.String())
			}
			diag := strings.TrimRight(stderr.String(), "\n")
			if strings.Count(diag, "\n") != 0 {
				t.Errorf("diagnostic must be one line, got:\n%s", stderr.String())
			}
			if !strings.HasPrefix(diag, "benchtab: ") || !strings.Contains(diag, tc.diag) {
				t.Errorf("diagnostic %q: want prefix \"benchtab: \" and substring %q", diag, tc.diag)
			}
		})
	}
}

func TestUsageExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no mode selected", []string{}},
		{"unknown machine", []string{"-machine", "vax", "-all"}},
		{"unknown flag", []string{"-frobnicate"}},
		{"stray arguments", []string{"-all", "stray"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code %d, want 2\nstderr: %s", code, stderr.String())
			}
		})
	}
}
