// Command sxelimd is the fault-tolerant compile daemon: a long-lived server
// exposing the sign-extension-elimination jit over HTTP on a unix socket or
// TCP address. It accepts concurrent compile/run requests, bounds its queue
// (overload is answered 429 + Retry-After, not goroutine growth), floors
// deadline-blown compiles to guarded Convert64-only code instead of failing
// them, keeps its warm set in a crash-safe on-disk cache that survives
// kill -9, and drains gracefully on SIGTERM.
//
// Usage:
//
//	sxelimd -socket /run/sxelimd.sock -cache-dir /var/cache/sxelimd
//	sxelimd -listen 127.0.0.1:7878 -cache-mb 128 -deadline 500ms
//
// Endpoints: POST /compile, GET /healthz, GET /statsz.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"signext/internal/serve"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs, nil))
}

// run is main minus the process plumbing: tests drive it with their own
// signal channel and read the bound address off ready.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal, ready chan<- net.Addr) int {
	fs := flag.NewFlagSet("sxelimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		socket     = fs.String("socket", "", "unix socket path to listen on")
		listen     = fs.String("listen", "", "TCP address to listen on (e.g. 127.0.0.1:7878)")
		variant    = fs.String("variant", "all", "default optimization variant")
		machine    = fs.String("machine", "ia64", "default machine model: ia64 or ppc64")
		cacheMB    = fs.Int64("cache-mb", 64, "in-memory cache budget in MiB (0 disables caching)")
		cacheDir   = fs.String("cache-dir", "", "crash-safe disk cache directory (empty: memory only)")
		shards     = fs.Int("shards", 0, "cache shard count (0: default)")
		deadline   = fs.Duration("deadline", 2*time.Second, "default per-request compile deadline")
		maxDead    = fs.Duration("max-deadline", 30*time.Second, "upper bound on requested deadlines")
		inflight   = fs.Int("max-inflight", 0, "concurrent compile slots (0: GOMAXPROCS)")
		queue      = fs.Int("max-queue", 64, "requests allowed to wait for a slot (-1: none)")
		paranoid   = fs.Bool("paranoid", false, "re-verify every cache hit with the deep verifier")
		elimBudget = fs.Int("elim-budget", 0, "per-function elimination work cap (0: unlimited)")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for inflight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*socket == "") == (*listen == "") {
		fmt.Fprintln(stderr, "sxelimd: exactly one of -socket or -listen is required")
		return 2
	}

	v, err := serve.ParseVariant(*variant)
	if err != nil {
		fmt.Fprintf(stderr, "sxelimd: %v\n", err)
		return 2
	}
	m, err := serve.ParseMachine(*machine)
	if err != nil {
		fmt.Fprintf(stderr, "sxelimd: %v\n", err)
		return 2
	}

	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	srv, err := serve.New(serve.Config{
		Variant:         v,
		Machine:         m,
		CacheBytes:      cacheBytes,
		Shards:          *shards,
		CacheDir:        *cacheDir,
		Paranoid:        *paranoid,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDead,
		MaxInflight:     *inflight,
		MaxQueue:        *queue,
		ElimBudget:      *elimBudget,
	})
	if err != nil {
		fmt.Fprintf(stderr, "sxelimd: %v\n", err)
		return 1
	}

	network, addr := "tcp", *listen
	if *socket != "" {
		network, addr = "unix", *socket
		// A previous unclean death (kill -9) leaves the socket file
		// behind; listening would fail on it. The cache is designed for
		// that crash — the socket file is just debris.
		os.Remove(addr)
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintf(stderr, "sxelimd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "sxelimd: serving on %s://%s (variant %q, machine %s)\n",
		network, l.Addr(), *variant, m)
	if ready != nil {
		ready <- l.Addr()
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "sxelimd: %v, draining (up to %s)\n", sig, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(stderr, "sxelimd: drain: %v\n", err)
			return 1
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintf(stderr, "sxelimd: %v\n", err)
			return 1
		}
	}
	if *socket != "" {
		os.Remove(*socket)
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "sxelimd: drained; served %d (degraded %d, rejected %d), cache hit rate %.2f\n",
		st.Served, st.Degraded, st.Rejected, st.Cache.HitRate())
	return 0
}
