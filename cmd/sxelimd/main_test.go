package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"signext/internal/serve"
)

// startDaemon runs the daemon in-process and returns a connected client plus
// the signal channel that triggers its drain.
func startDaemon(t *testing.T, args []string) (*serve.Client, chan os.Signal, *bytes.Buffer, *sync.WaitGroup) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	ready := make(chan net.Addr, 1)
	var out bytes.Buffer
	var mu sync.Mutex
	lockedOut := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := run(args, lockedOut, lockedOut, sigs, ready); code != 0 {
			t.Errorf("daemon exited %d:\n%s", code, out.String())
		}
	}()
	select {
	case addr := <-ready:
		return serve.Dial(addr.Network(), addr.String()), sigs, &out, &wg
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
		return nil, nil, nil, nil
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestDaemonServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	c, sigs, out, wg := startDaemon(t, []string{
		"-listen", "127.0.0.1:0",
		"-cache-dir", filepath.Join(dir, "cache"),
	})

	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Compile(context.Background(), &serve.CompileRequest{
		Source: "void main() { int i; i = 0; while (i < 5) { print(i*i); i = i + 1; } }",
		Run:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "0\n1\n4\n9\n16\n"; resp.Output != want {
		t.Fatalf("output %q, want %q", resp.Output, want)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 1 || st.Disk == nil {
		t.Fatalf("stats after one request: %+v", st)
	}

	sigs <- syscall.SIGTERM
	wg.Wait()
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "served 1") {
		t.Errorf("drain log incomplete:\n%s", s)
	}
}

func TestDaemonUnixSocketAndStaleSocketFile(t *testing.T) {
	dir, err := os.MkdirTemp("", "sxd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	socket := filepath.Join(dir, "d.sock")

	// Debris from a simulated earlier kill -9: a stale socket file the
	// daemon must clear rather than refuse to start.
	if err := os.WriteFile(socket, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	c, sigs, _, wg := startDaemon(t, []string{"-socket", socket})
	resp, err := c.Compile(context.Background(), &serve.CompileRequest{Source: "void main() { print(1234); }", Run: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != "1234\n" {
		t.Fatalf("output %q", resp.Output)
	}
	sigs <- syscall.SIGTERM
	wg.Wait()
	if _, err := os.Stat(socket); !os.IsNotExist(err) {
		t.Errorf("socket file not cleaned up on drain: %v", err)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no endpoint", nil},
		{"both endpoints", []string{"-socket", "/tmp/x", "-listen", ":0"}},
		{"bad variant", []string{"-listen", ":0", "-variant", "nope"}},
		{"bad machine", []string{"-listen", ":0", "-machine", "vax"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if code := run(tc.args, &out, &out, nil, nil); code != 2 {
				t.Errorf("exit %d, want 2 (output: %s)", code, out.String())
			}
		})
	}
}
