// Command sxfuzz runs coverage-seeking randomized differential testing of
// the sign-extension elimination pipeline and prints a one-line JSON
// verdict. Exit status 0 means the campaign is clean (and, in -chaos mode,
// that at least one planted miscompile was caught); 1 means failures were
// found or the chaos self-check proved the oracle blind; 2 means bad usage.
//
//	sxfuzz -seed 1 -count 2000                  # fixed-size campaign
//	sxfuzz -seed 7 -duration 60s -minimize      # timed, write reproducers
//	sxfuzz -seed 1 -count 200 -chaos            # fault-injection self-check
//	sxfuzz -seed 1 -count 500 -cache            # add the cache-identity property
//	sxfuzz -seed 1 -count 500 -tiered           # add the profile-identity property
//	sxfuzz -seed 1 -count 200 -serve            # add the serve-identity property
//	sxfuzz -seed 1 -count 500 -dispatch         # force dispatch-identity on every program
//	sxfuzz -seed 1 -count 500 -peep             # add the peep-identity property
//	sxfuzz -seed 1 -count 100 -peep -corpus internal/difftest/testdata/peep  # seed with the directed rule corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"signext/internal/difftest"
	"signext/internal/progen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sxfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "base seed; program i uses seed+i")
		count    = fs.Int("count", 0, "program budget (0 = until -duration)")
		duration = fs.Duration("duration", 0, "wall budget (0 = until -count)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		kind     = fs.String("kind", "", "restrict generator kind: mj or ir (default both)")
		stmts    = fs.Int("stmts", 0, "statements per generated program (0 = default)")
		heavy    = fs.Int("heavy", 0, "run full metamorphic set every Nth program (0 = default 5, 1 = always)")
		minimize = fs.Bool("minimize", false, "shrink failures into reproducer files")
		repros   = fs.Int("repros", 0, "max reproducers to write (0 = default 3)")
		out      = fs.String("out", "", "reproducer output directory (default internal/difftest/testdata)")
		chaos    = fs.Bool("chaos", false, "fault-injection self-check: plant DropExt miscompiles, require the oracle to catch them")
		cache    = fs.Bool("cache", false, "add the cache-identity property to the metamorphic set (warm compile-cache hits must be bit-identical to cold compiles)")
		tiered   = fs.Bool("tiered", false, "add the profile-identity property to the metamorphic set (tiered execution must be bit-identical to one-shot compilation fed the gathered profile)")
		srv      = fs.Bool("serve", false, "add the serve-identity property to the metamorphic set (compile-daemon answers must match direct compiles, healthy and degraded)")
		dispatch = fs.Bool("dispatch", false, "check dispatch identity (threaded bytecode vs reference walker) on every program, not just the metamorphic sample")
		peep     = fs.Bool("peep", false, "add the peep-identity property to every program (rule-table peephole builds must match the reference output under both dispatchers)")
		corpus   = fs.String("corpus", "", "replay every .ir entry in this directory (directed corpus) before the generated programs")
		verbose  = fs.Bool("v", false, "log campaign progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "sxfuzz: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	cfg := difftest.CampaignConfig{
		Seed:        *seed,
		Count:       *count,
		Duration:    *duration,
		Workers:     *workers,
		Gen:         progen.Config{Stmts: *stmts},
		HeavySample: *heavy,
		Chaos:       *chaos,
		Minimize:    *minimize,
		MaxRepros:   *repros,
		OutDir:      *out,
		Corpus:      *corpus,
	}
	cfg.Check.Cache = *cache
	cfg.Check.Tiered = *tiered
	cfg.Check.Serve = *srv
	cfg.Check.Dispatch = *dispatch
	cfg.Check.Peep = *peep
	switch *kind {
	case "":
	case "mj", "ir":
		cfg.Kinds = []string{*kind}
	default:
		fmt.Fprintf(stderr, "sxfuzz: -kind must be mj or ir, got %q\n", *kind)
		return 2
	}
	if *verbose {
		cfg.Log = stderr
	}
	res, err := difftest.Campaign(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "sxfuzz: %v\n", err)
		return 1
	}
	line, _ := json.Marshal(res)
	fmt.Fprintln(stdout, string(line))
	if !res.OK {
		for _, d := range res.FailureDetails {
			fmt.Fprintf(stderr, "sxfuzz: FAIL %s\n", d)
		}
		if *chaos && res.Caught == 0 {
			fmt.Fprintln(stderr, "sxfuzz: FAIL chaos self-check caught no planted miscompile — the oracle is blind")
		}
		return 1
	}
	return 0
}
