package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"signext/internal/difftest"
)

func TestRunCleanCampaign(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "1", "-count", "20"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var res difftest.CampaignResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("verdict is not one-line JSON: %v\n%s", err, stdout.String())
	}
	if !res.OK || res.Programs != 20 || res.Failures != 0 {
		t.Fatalf("unexpected verdict: %+v", res)
	}
	if strings.Count(strings.TrimSpace(stdout.String()), "\n") != 0 {
		t.Fatalf("verdict spans multiple lines:\n%s", stdout.String())
	}
}

func TestRunChaosSelfCheck(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-seed", "1", "-count", "12", "-chaos", "-minimize",
		"-repros", "1", "-out", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var res difftest.CampaignResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Caught < 1 || len(res.Repros) < 1 {
		t.Fatalf("chaos self-check found nothing: %+v", res)
	}
	if filepath.Dir(res.Repros[0]) != dir {
		t.Fatalf("reproducer outside -out: %s", res.Repros[0])
	}
}

func TestRunBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-kind", "cobol"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -kind: exit %d", code)
	}
	if code := run([]string{"stray"}, &stdout, &stderr); code != 2 {
		t.Fatalf("stray arg: exit %d", code)
	}
}
