// Command sxelim compiles a MiniJava source file under a chosen sign
// extension elimination variant and reports what happened.
//
// Usage:
//
//	sxelim prog.mj                      # compile with the full algorithm, run
//	sxelim -variant baseline prog.mj    # pick a Table 1/2 variant
//	sxelim -dump prog.mj                # print the optimized IR
//	sxelim -asm prog.mj                 # print the lowered machine code
//	sxelim -check prog.mj               # guarded pipeline + differential oracle
//	sxelim -peep prog.mj                # rule-table peephole pass after extelim
//	sxelim -peep -peep-rules div-magic,shl-shl prog.mj   # restrict the rule table
//	sxelim -compare prog.mj             # dynamic counts under all variants
//	sxelim -cache -cache-mb 128 prog.mj # content-addressed compile cache
//	sxelim -tiered prog.mj              # tiered runtime: interp tier + hot promotion
//	sxelim -tiered -profile-out p.json prog.mj   # persist the gathered profile
//	sxelim -profile-in p.json prog.mj   # compile with a persisted profile
//	sxelim prog.ir                      # compile textual IR (ir.ParseProgram)
//
// Any failure — bad input, compile error, oracle divergence — exits with
// code 1 and a one-line diagnostic; sxelim never surfaces a panic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"signext"
	"signext/internal/interp"
	"signext/internal/ir"
)

var variantFlags = map[string]signext.Variant{
	"baseline":     signext.VariantBaseline,
	"genuse":       signext.VariantGenUse,
	"first":        signext.VariantFirst,
	"basic":        signext.VariantBasicUDDU,
	"insert":       signext.VariantInsert,
	"order":        signext.VariantOrder,
	"insert-order": signext.VariantInsertOrder,
	"array":        signext.VariantArray,
	"array-insert": signext.VariantArrayInsert,
	"array-order":  signext.VariantArrayOrder,
	"all-pde":      signext.VariantAllPDE,
	"all":          signext.VariantAll,
}

// usageError distinguishes command-line mistakes (exit 2) from input or
// compilation failures (exit 1).
type usageError string

func (e usageError) Error() string { return string(e) }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	err := func() (err error) {
		// The guarded pipeline already converts phase panics into per-function
		// fallbacks; this is the last line of defense for everything else
		// (frontend, flag handling, printing), so a user never sees a stack
		// trace from a one-line diagnostic tool.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("internal error: %v", r)
			}
		}()
		return runMain(args, stdout, stderr)
	}()
	if err != nil {
		fmt.Fprintln(stderr, "sxelim:", err)
		if _, ok := err.(usageError); ok {
			return 2
		}
		return 1
	}
	return 0
}

func runMain(args []string, stdout, stderr io.Writer) error {
	flag := flag.NewFlagSet("sxelim", flag.ContinueOnError)
	flag.SetOutput(stderr)
	variant := flag.String("variant", "all", "algorithm variant (baseline, genuse, first, basic, insert, order, insert-order, array, array-insert, array-order, all-pde, all)")
	machine := flag.String("machine", "ia64", "machine model: ia64 or ppc64")
	dump := flag.Bool("dump", false, "print the optimized IR")
	asm := flag.Bool("asm", false, "print the lowered machine code")
	dot := flag.Bool("dot", false, "print the optimized CFG in Graphviz DOT syntax")
	trace := flag.Int64("trace", 0, "trace the first N executed instructions to stderr")
	run := flag.Bool("run", true, "execute the compiled program")
	compare := flag.Bool("compare", false, "report dynamic extension counts under every variant")
	profile := flag.Bool("profile", true, "use interpreter branch profiles for order determination")
	check := flag.Bool("check", false, "guarded pipeline: verify IR at phase boundaries and run the differential oracle")
	budget := flag.Int("budget", 0, "per-function elimination work budget (0 = unlimited)")
	peep := flag.Bool("peep", false, "run the rule-table peephole pass after the sign extension phase")
	peepRules := flag.String("peep-rules", "", "comma-separated peephole rule names to enable (with -peep; empty = all)")
	parallel := flag.Int("parallel", 0, "compile-driver worker count (0 = all CPUs, 1 = sequential)")
	useCache := flag.Bool("cache", false, "serve per-function compilations from a content-addressed compile cache")
	cacheMB := flag.Int64("cache-mb", 64, "compile cache capacity in MiB (with -cache)")
	tiered := flag.Bool("tiered", false, "run under the tiered runtime: profiling interpreter tier + hot-function promotion through the jit pipeline")
	hotThreshold := flag.Int64("hot-threshold", 0, "hotness weight (calls + branch events) promoting a function out of the interpreter tier (0 = default 100, negative = never)")
	invocations := flag.Int("invocations", 3, "number of main invocations under -tiered")
	profileOut := flag.String("profile-out", "", "write the gathered branch profile as JSON to this file (\"-\" = stdout)")
	profileIn := flag.String("profile-in", "", "load a JSON branch profile: tier-up seed with -tiered, static compile profile otherwise")
	if err := flag.Parse(args); err != nil {
		return usageError(err.Error())
	}

	if flag.NArg() != 1 {
		return usageError("usage: sxelim [flags] file.mj")
	}
	if *tiered && *compare {
		return usageError("-tiered and -compare are mutually exclusive")
	}
	var ruleFilter []string
	if *peepRules != "" {
		for _, name := range strings.Split(*peepRules, ",") {
			ruleFilter = append(ruleFilter, strings.TrimSpace(name))
		}
		if err := signext.ValidatePeepRules(ruleFilter); err != nil {
			return usageError(err.Error())
		}
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	src := string(srcBytes)

	// Textual IR input bypasses the MiniJava frontend.
	var irProg *ir.Program
	if strings.HasSuffix(flag.Arg(0), ".ir") {
		irProg, err = ir.ParseProgram(src)
		if err != nil {
			return err
		}
	}
	var cache signext.CacheHandle
	if *useCache {
		cache = signext.NewCache(*cacheMB << 20)
	}
	var seed signext.Profile
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			return err
		}
		seed, err = signext.ParseProfile(data)
		if err != nil {
			return fmt.Errorf("%s: %w", *profileIn, err)
		}
	}
	compile := func(o signext.Options) (*signext.Result, error) {
		o.Checked = o.Checked || *check
		o.CheckedRun = o.CheckedRun || *check
		o.ElimBudget = *budget
		o.Peep = *peep
		o.PeepRules = ruleFilter
		o.Parallelism = *parallel
		o.Cache = cache
		o.Profile = seed // nil without -profile-in
		res, err := func() (res *signext.Result, err error) {
			if irProg != nil {
				return signext.CompileProgram(irProg, o)
			}
			return signext.CompileSource(src, o)
		}()
		if res != nil {
			for _, fb := range res.Fallbacks() {
				fmt.Fprintf(stderr, "sxelim: fallback: %s disabled for %s: %s\n", fb.Phase, fb.Func, fb.Reason)
			}
		}
		return res, err
	}

	mach := signext.IA64
	if *machine == "ppc64" {
		mach = signext.PPC64
	}
	v, ok := variantFlags[*variant]
	if !ok {
		return usageError("unknown variant " + *variant)
	}

	writeProfile := func(p signext.Profile) error {
		if *profileOut == "" {
			return nil
		}
		data := p.Marshal()
		if *profileOut == "-" {
			_, err := stdout.Write(data)
			return err
		}
		return os.WriteFile(*profileOut, data, 0o644)
	}
	// Without -tiered, -profile-out persists a single profiling-tier run.
	gatherAndWrite := func() error {
		if *profileOut == "" {
			return nil
		}
		p, err := func() (signext.Profile, error) {
			if irProg != nil {
				return signext.GatherProfile(irProg, 0)
			}
			return signext.GatherProfileSource(src, 0)
		}()
		if err != nil {
			return err
		}
		return writeProfile(p)
	}

	if *tiered {
		o := signext.TieredOptions{
			Options: signext.Options{
				Variant: v, Machine: mach,
				Checked: *check, CheckedRun: *check,
				ElimBudget: *budget, Parallelism: *parallel, Cache: cache,
				Peep: *peep, PeepRules: ruleFilter,
			},
			Invocations:  *invocations,
			HotThreshold: *hotThreshold,
			Seed:         seed,
		}
		tr, err := func() (*signext.TieredResult, error) {
			if irProg != nil {
				return signext.RunTiered(irProg, o)
			}
			return signext.RunTieredSource(src, o)
		}()
		if err != nil {
			return err
		}
		for _, fb := range tr.Fallbacks() {
			fmt.Fprintf(stderr, "sxelim: fallback: %s disabled for %s: %s\n", fb.Phase, fb.Func, fb.Reason)
		}
		tel := tr.Telemetry
		fmt.Fprintf(stdout, "tiered: %d invocations, %d promotions, steady-state speedup %.2fx\n",
			tel.Invocations, tel.TierUps, tel.SteadySpeedup())
		for _, p := range tr.Promotions {
			fmt.Fprintf(stdout, "tiered: promoted %s (invocation %d, weight %d)\n", p.Func, p.Invocation, p.Weight)
		}
		// The tier mix must never change observable behaviour: every
		// invocation's output has to equal the steady-state (one-shot)
		// artifact's.
		rr, err := tr.Run()
		if err != nil {
			return fmt.Errorf("execution failed: %w", err)
		}
		for i, out := range tr.Outputs {
			if out != rr.Output {
				return fmt.Errorf("tiered invocation %d output diverged from the one-shot compile:\n%q\n%q", i+1, out, rr.Output)
			}
		}
		fmt.Fprintf(stdout, "tiered: identity: %d invocation outputs match the one-shot compile\n", len(tr.Outputs))
		printCacheStats(stderr, cache)
		if *check {
			fmt.Fprintln(stdout, "oracle: optimized output and extension counts check out against the baseline reference")
		}
		if *dump {
			for _, fn := range tr.IR().Funcs {
				fmt.Fprintln(stdout, fn.Format())
			}
		}
		if *run {
			fmt.Fprint(stdout, rr.Output)
			fmt.Fprintf(stdout, "[dynamic 32-bit sign extensions: %d, cycles: %d]\n", rr.DynamicExts, rr.Cycles)
		}
		return writeProfile(tr.Profile)
	}

	if *compare {
		var base int64
		for _, vv := range signext.Variants {
			res, err := compile(signext.Options{
				Variant: vv, Machine: mach, WithProfile: *profile,
			})
			if err != nil {
				return fmt.Errorf("%v: %w", vv, err)
			}
			rr, err := res.Run()
			if err != nil {
				return fmt.Errorf("%v: execution failed: %w", vv, err)
			}
			if vv == signext.VariantBaseline {
				base = rr.DynamicExts
			}
			pct := 100.0
			if base > 0 {
				pct = 100 * float64(rr.DynamicExts) / float64(base)
			}
			fmt.Fprintf(stdout, "%-28s dyn ext32 %12d (%6.2f%%)  static %4d  cycles %12d\n",
				vv, rr.DynamicExts, pct, res.StaticExts(), rr.Cycles)
		}
		printCacheStats(stderr, cache)
		return gatherAndWrite()
	}

	res, err := compile(signext.Options{
		Variant: v, Machine: mach, WithProfile: *profile,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "variant %s, machine %s: %d extensions eliminated, %d inserted, %d remain\n",
		v, mach, res.Eliminated(), res.Inserted(), res.StaticExts())
	if *peep {
		fmt.Fprintf(stdout, "peep: %d rule-table rewrites\n", res.PeepRewrites())
	}
	printCacheStats(stderr, cache)
	if *check {
		fmt.Fprintln(stdout, "oracle: optimized output and extension counts check out against the baseline reference")
	}
	if *dump {
		for _, fn := range res.IR().Funcs {
			fmt.Fprintln(stdout, fn.Format())
		}
	}
	if *asm {
		for _, fn := range res.IR().Funcs {
			fmt.Fprintln(stdout, res.Assembly(fn.Name))
		}
	}
	if *dot {
		for _, fn := range res.IR().Funcs {
			fmt.Fprintln(stdout, fn.Dot())
		}
	}
	if *run {
		var rr *signext.RunResult
		var err error
		if *trace > 0 {
			out, terr := interp.Run(res.IR(), "main", interp.Options{
				Mode:    interp.Mode64,
				Machine: mach,
				Trace: func(fname string, blk *ir.Block, ins *ir.Instr) {
					fmt.Fprintf(stderr, "%s\t%s\t%s\n", fname, blk, ins)
				},
				TraceLimit: *trace,
			})
			err = terr
			rr = &signext.RunResult{Output: out.Output, DynamicExts: out.Ext32(), Cycles: out.Cycles, Steps: out.Steps}
		} else {
			rr, err = res.Run()
		}
		if err != nil {
			return fmt.Errorf("execution failed: %w", err)
		}
		fmt.Fprint(stdout, rr.Output)
		fmt.Fprintf(stdout, "[dynamic 32-bit sign extensions: %d, cycles: %d]\n", rr.DynamicExts, rr.Cycles)
	}
	return gatherAndWrite()
}

// printCacheStats summarizes compile-cache activity on stderr; a nil cache
// prints nothing, so program output stays unchanged without -cache.
func printCacheStats(stderr io.Writer, cache signext.CacheHandle) {
	if cache == nil {
		return
	}
	s := cache.Stats()
	fmt.Fprintf(stderr, "sxelim: cache: %d hits, %d misses, %d evictions, %d entries, %d bytes\n",
		s.Hits, s.Misses, s.Evictions, s.Entries, s.Bytes)
}
