// Command sxelim compiles a MiniJava source file under a chosen sign
// extension elimination variant and reports what happened.
//
// Usage:
//
//	sxelim prog.mj                      # compile with the full algorithm, run
//	sxelim -variant baseline prog.mj    # pick a Table 1/2 variant
//	sxelim -dump prog.mj                # print the optimized IR
//	sxelim -asm prog.mj                 # print the lowered machine code
//	sxelim -compare prog.mj             # dynamic counts under all variants
//	sxelim prog.ir                      # compile textual IR (ir.ParseProgram)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"signext"
	"signext/internal/interp"
	"signext/internal/ir"
)

var variantFlags = map[string]signext.Variant{
	"baseline":     signext.VariantBaseline,
	"genuse":       signext.VariantGenUse,
	"first":        signext.VariantFirst,
	"basic":        signext.VariantBasicUDDU,
	"insert":       signext.VariantInsert,
	"order":        signext.VariantOrder,
	"insert-order": signext.VariantInsertOrder,
	"array":        signext.VariantArray,
	"array-insert": signext.VariantArrayInsert,
	"array-order":  signext.VariantArrayOrder,
	"all-pde":      signext.VariantAllPDE,
	"all":          signext.VariantAll,
}

func main() {
	variant := flag.String("variant", "all", "algorithm variant (baseline, genuse, first, basic, insert, order, insert-order, array, array-insert, array-order, all-pde, all)")
	machine := flag.String("machine", "ia64", "machine model: ia64 or ppc64")
	dump := flag.Bool("dump", false, "print the optimized IR")
	asm := flag.Bool("asm", false, "print the lowered machine code")
	dot := flag.Bool("dot", false, "print the optimized CFG in Graphviz DOT syntax")
	trace := flag.Int64("trace", 0, "trace the first N executed instructions to stderr")
	run := flag.Bool("run", true, "execute the compiled program")
	compare := flag.Bool("compare", false, "report dynamic extension counts under every variant")
	profile := flag.Bool("profile", true, "use interpreter branch profiles for order determination")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sxelim [flags] file.mj")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sxelim:", err)
		os.Exit(1)
	}
	src := string(srcBytes)

	// Textual IR input bypasses the MiniJava frontend.
	var irProg *ir.Program
	if strings.HasSuffix(flag.Arg(0), ".ir") {
		irProg, err = ir.ParseProgram(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sxelim:", err)
			os.Exit(1)
		}
	}
	compile := func(o signext.Options) (*signext.Result, error) {
		if irProg != nil {
			return signext.CompileProgram(irProg, o)
		}
		return signext.CompileSource(src, o)
	}

	mach := signext.IA64
	if *machine == "ppc64" {
		mach = signext.PPC64
	}
	v, ok := variantFlags[*variant]
	if !ok {
		fmt.Fprintln(os.Stderr, "sxelim: unknown variant", *variant)
		os.Exit(2)
	}

	if *compare {
		var base int64
		for _, vv := range signext.Variants {
			res, err := compile(signext.Options{
				Variant: vv, Machine: mach, WithProfile: *profile,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sxelim:", err)
				os.Exit(1)
			}
			rr, err := res.Run()
			if err != nil {
				fmt.Fprintln(os.Stderr, "sxelim:", vv, "execution failed:", err)
				os.Exit(1)
			}
			if vv == signext.VariantBaseline {
				base = rr.DynamicExts
			}
			pct := 100.0
			if base > 0 {
				pct = 100 * float64(rr.DynamicExts) / float64(base)
			}
			fmt.Printf("%-28s dyn ext32 %12d (%6.2f%%)  static %4d  cycles %12d\n",
				vv, rr.DynamicExts, pct, res.StaticExts(), rr.Cycles)
		}
		return
	}

	res, err := compile(signext.Options{
		Variant: v, Machine: mach, WithProfile: *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sxelim:", err)
		os.Exit(1)
	}
	fmt.Printf("variant %s, machine %s: %d extensions eliminated, %d inserted, %d remain\n",
		v, mach, res.Eliminated(), res.Inserted(), res.StaticExts())
	if *dump {
		for _, fn := range res.IR().Funcs {
			fmt.Println(fn.Format())
		}
	}
	if *asm {
		for _, fn := range res.IR().Funcs {
			fmt.Println(res.Assembly(fn.Name))
		}
	}
	if *dot {
		for _, fn := range res.IR().Funcs {
			fmt.Println(fn.Dot())
		}
	}
	if *run {
		var rr *signext.RunResult
		var err error
		if *trace > 0 {
			out, terr := interp.Run(res.IR(), "main", interp.Options{
				Mode:    interp.Mode64,
				Machine: mach,
				Trace: func(fname string, blk *ir.Block, ins *ir.Instr) {
					fmt.Fprintf(os.Stderr, "%s\t%s\t%s\n", fname, blk, ins)
				},
				TraceLimit: *trace,
			})
			err = terr
			rr = &signext.RunResult{Output: out.Output, DynamicExts: out.Ext32(), Cycles: out.Cycles, Steps: out.Steps}
		} else {
			rr, err = res.Run()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sxelim: execution failed:", err)
			os.Exit(1)
		}
		fmt.Print(rr.Output)
		fmt.Printf("[dynamic 32-bit sign extensions: %d, cycles: %d]\n", rr.DynamicExts, rr.Cycles)
	}
}
