package main

import (
	"signext"

	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runGolden executes the CLI on the fixed fixture and compares stdout to a
// golden file byte-for-byte. Regenerate with: go test ./cmd/sxelim -update
func runGolden(t *testing.T, golden string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
	}
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenSummaryAndRun(t *testing.T) {
	// The default mode: one summary line, the program's own output, and the
	// dynamic-count trailer. Everything here is deterministic: counts come
	// from the interpreter, not timing.
	runGolden(t, "narrow_run.golden", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenCompare(t *testing.T) {
	runGolden(t, "narrow_compare.golden", "-compare", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenDump(t *testing.T) {
	// -dump under the basic variant: the printed IR is the full optimized
	// program, pinning instruction order, register numbering and the
	// surviving extensions.
	runGolden(t, "narrow_dump.golden", "-variant", "basic", "-run=false", "-dump", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenIRInput(t *testing.T) {
	runGolden(t, "ext_run.golden", "-check", "-parallel", "1", "testdata/ext.ir")
}

func TestGoldenPeep(t *testing.T) {
	// The peephole pass over a fixture with one site per rule family: the
	// rewrite count and the program output are both pinned, so a rule that
	// silently stops firing (or fires and changes a result) breaks the
	// golden.
	runGolden(t, "peep_run.golden", "-peep", "-parallel", "1", "testdata/peep.ir")
}

func TestGoldenPeepRulesFilter(t *testing.T) {
	// A single-rule filter: only div-magic may fire on the same fixture.
	runGolden(t, "peep_rules.golden", "-peep", "-peep-rules", "div-magic", "-parallel", "1", "testdata/peep.ir")
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		diag string // substring expected on stderr
	}{
		{"no input file", []string{}, 2, "usage:"},
		{"unknown variant", []string{"-variant", "nope", "testdata/narrow.mj"}, 2, "unknown variant"},
		{"unknown flag", []string{"-frobnicate"}, 2, ""},
		{"missing file", []string{"testdata/no-such-file.mj"}, 1, "no such file"},
		{"bad source", []string{"testdata/bad.mj"}, 1, "sxelim:"},
		{"unknown peep rule", []string{"-peep", "-peep-rules", "no-such-rule", "testdata/peep.ir"}, 2, "no-such-rule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit code %d, want %d\nstderr: %s", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.diag) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.diag)
			}
		})
	}
}

func TestGoldenTiered(t *testing.T) {
	// Tiered runtime over the fixture: promotion order, weights, the
	// modelled steady-state speedup and the identity line are all
	// deterministic (weights and cycles come from the interpreter, the
	// speedup from the penalty cost model — no wall clock reaches stdout).
	runGolden(t, "narrow_tiered.golden", "-tiered", "-hot-threshold", "50", "-invocations", "4", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenProfileOut(t *testing.T) {
	// The gathered profile in its JSON wire form, written to stdout. This
	// pins the serialization: field order, function/branch sorting, indent
	// and the trailing newline.
	runGolden(t, "narrow_profile.golden", "-run=false", "-profile-out", "-", "-parallel", "1", "testdata/narrow.mj")
}

// TestProfileRoundTrip drives the full persistence loop: -profile-out
// writes JSON a later process accepts via -profile-in, decode→encode is
// byte-identical (including the golden file itself), and seeding a tiered
// run with its own profile warm-starts promotions.
func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pfile := filepath.Join(dir, "profile.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{"-tiered", "-hot-threshold", "50", "-profile-out", pfile, "-parallel", "1", "testdata/narrow.mj"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("profile-out run failed (%d): %s", code, stderr.String())
	}
	data, err := os.ReadFile(pfile)
	if err != nil {
		t.Fatal(err)
	}
	p, err := signext.ParseProfile(data)
	if err != nil {
		t.Fatalf("persisted profile does not parse: %v", err)
	}
	if !bytes.Equal(p.Marshal(), data) {
		t.Fatal("decode→encode of the persisted profile is not byte-identical")
	}

	// The pinned golden must round-trip too — if the wire format drifts,
	// this fails even before -update is considered. The golden holds the
	// compile summary line followed by the JSON document.
	golden, err := os.ReadFile("testdata/narrow_profile.golden")
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.IndexByte(golden, '{')
	if idx < 0 {
		t.Fatal("golden holds no JSON document")
	}
	gp, err := signext.ParseProfile(golden[idx:])
	if err != nil {
		t.Fatalf("golden profile does not parse: %v", err)
	}
	if !bytes.Equal(gp.Marshal(), golden[idx:]) {
		t.Fatal("golden profile is not a fixed point of decode→encode")
	}

	// Seeded run: the profile warm-starts promotion before invocation 1.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-tiered", "-hot-threshold", "50", "-invocations", "1", "-profile-in", pfile, "-parallel", "1", "testdata/narrow.mj"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("profile-in run failed (%d): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "(invocation 0,") {
		t.Errorf("seeded run did not promote before the first invocation:\n%s", stdout.String())
	}

	// And a plain compile accepts the profile as the static order source.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-profile-in", pfile, "-parallel", "1", "testdata/narrow.mj"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("static -profile-in compile failed (%d): %s", code, stderr.String())
	}
}
