package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// runGolden executes the CLI on the fixed fixture and compares stdout to a
// golden file byte-for-byte. Regenerate with: go test ./cmd/sxelim -update
func runGolden(t *testing.T, golden string, args ...string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
	}
	path := filepath.Join("testdata", golden)
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenSummaryAndRun(t *testing.T) {
	// The default mode: one summary line, the program's own output, and the
	// dynamic-count trailer. Everything here is deterministic: counts come
	// from the interpreter, not timing.
	runGolden(t, "narrow_run.golden", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenCompare(t *testing.T) {
	runGolden(t, "narrow_compare.golden", "-compare", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenDump(t *testing.T) {
	// -dump under the basic variant: the printed IR is the full optimized
	// program, pinning instruction order, register numbering and the
	// surviving extensions.
	runGolden(t, "narrow_dump.golden", "-variant", "basic", "-run=false", "-dump", "-parallel", "1", "testdata/narrow.mj")
}

func TestGoldenIRInput(t *testing.T) {
	runGolden(t, "ext_run.golden", "-check", "-parallel", "1", "testdata/ext.ir")
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		diag string // substring expected on stderr
	}{
		{"no input file", []string{}, 2, "usage:"},
		{"unknown variant", []string{"-variant", "nope", "testdata/narrow.mj"}, 2, "unknown variant"},
		{"unknown flag", []string{"-frobnicate"}, 2, ""},
		{"missing file", []string{"testdata/no-such-file.mj"}, 1, "no such file"},
		{"bad source", []string{"testdata/bad.mj"}, 1, "sxelim:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != tc.code {
				t.Fatalf("exit code %d, want %d\nstderr: %s", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.diag) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.diag)
			}
		})
	}
}
