// Countdown walks through the paper's Figure 7/8 example end to end, built
// directly with the IR builder (no frontend): it shows the generated
// extensions after 64-bit conversion, then how insertion + order
// determination + the array theorems leave exactly one extension, outside
// the loop (Figure 8(b)).
package main

import (
	"fmt"
	"log"

	"signext"
	"signext/internal/ir"
)

// build constructs the paper's Figure 7 program:
//
//	int t = 0; int i = mem;
//	do { i = i - 1; j = a[i]; j &= 0x0fffffff; t += j; } while (i > start);
//	d = (double) t;
func build() *ir.Program {
	prog := ir.NewProgram()
	prog.NGlobals = 1

	b := ir.NewFunc("fig7", ir.Param{Ref: true}, ir.Param{W: ir.W32})
	f := b.Fn
	a, start := ir.Reg(0), ir.Reg(1)
	t, i, j := f.NewReg(), f.NewReg(), f.NewReg()
	one := b.Const(ir.W32, 1)
	mask := b.Const(ir.W32, 0x0fffffff)
	b.ConstTo(ir.W32, t, 0)
	b.LoadGTo(ir.W32, i, 0) // i = mem (zero-extending load on IA64)
	loop, exit := f.NewBlock(), f.NewBlock()
	b.Jmp(loop)
	b.SetBlock(loop)
	b.OpTo(ir.OpSub, ir.W32, i, i, one)
	b.ArrLoadTo(ir.W32, false, j, a, i)
	b.OpTo(ir.OpAnd, ir.W32, j, j, mask)
	b.OpTo(ir.OpAdd, ir.W32, t, t, j)
	b.Br(ir.W32, ir.CondGT, i, start, loop, exit)
	b.SetBlock(exit)
	d := b.I2D(t)
	b.FPrint(d)
	b.Ret(ir.NoReg)
	prog.AddFunc(f)

	m := ir.NewFunc("main")
	n := m.Const(ir.W32, 200)
	arr := m.NewArr(ir.W32, false, n)
	k := m.Fn.NewReg()
	m.ConstTo(ir.W32, k, 0)
	fill, done := m.Fn.NewBlock(), m.Fn.NewBlock()
	m.Jmp(fill)
	m.SetBlock(fill)
	v := m.Mul(ir.W32, k, m.Const(ir.W32, 2654435761))
	m.ArrStore(ir.W32, false, arr, k, v)
	m.OpTo(ir.OpAdd, ir.W32, k, k, m.Const(ir.W32, 1))
	m.Br(ir.W32, ir.CondLT, k, n, fill, done)
	m.SetBlock(done)
	m.StoreG(ir.W32, 0, m.Const(ir.W32, 150)) // mem = 150
	m.CallV("fig7", arr, m.Const(ir.W32, 1))
	m.Ret(ir.NoReg)
	prog.AddFunc(m.Fn)
	return prog
}

func main() {
	for _, v := range []signext.Variant{
		signext.VariantBaseline, signext.VariantFirst, signext.VariantAll,
	} {
		res, err := signext.CompileProgram(build(), signext.Options{
			Variant: v, Machine: signext.IA64,
		})
		if err != nil {
			log.Fatal(err)
		}
		run, err := res.Run()
		if err != nil {
			log.Fatal(v, ": ", err)
		}
		fmt.Printf("=== %s: %d static extensions, %d executed ===\n",
			v, res.StaticExts(), run.DynamicExts)
		fmt.Println(res.Format("fig7"))
	}
	fmt.Println("Note the full algorithm's result matches the paper's Figure 8(b):")
	fmt.Println("the loop body holds no extension; the single survivor sits before")
	fmt.Println("the int-to-double conversion after the loop.")
}
