// Arrayidx demonstrates the paper's section 3 — Theorems 1 through 4 for
// array subscript extensions — on the exact shapes the paper discusses,
// including the Figure 10 dependence on the configurable maximum array
// length.
package main

import (
	"fmt"
	"log"
	"strings"

	"signext"
)

type demo struct {
	name    string
	theorem string
	src     string
	maxLen  int64
}

var demos = []demo{
	{
		name:    "count-up loop",
		theorem: "Theorem 2: subscript i+1, both operands sign-extended, 1 >= 0",
		src: `
void main() {
	int[] a = new int[4096];
	int s = 0;
	for (int i = 0; i < a.length; i++) { a[i] = i; }
	for (int i = 0; i < a.length; i++) { s += a[i]; }
	print(s);
}`,
	},
	{
		name:    "count-down loop",
		theorem: "Theorem 4 with Java's maxlen: subscript i-1 = i+(-1), -1 >= maxlen-1-0x7fffffff = -1",
		src: `
void main() {
	int[] a = new int[4096];
	for (int i = 0; i < a.length; i++) { a[i] = 3 * i; }
	int s = 0;
	int i = a.length;
	do { i = i - 1; s += a[i]; } while (i > 0);
	print(s);
}`,
	},
	{
		name:    "zero-extended memory index",
		theorem: "Theorems 1/3: the index's upper 32 bits come from a zero-extending load",
		src: `
static int g = 100;
void main() {
	int[] a = new int[128];
	for (int k = 0; k < a.length; k++) { a[k] = k * k; }
	int s = 0;
	int i = g;       // zero-extending load on IA64
	do { i = i - 1; s += a[i]; } while (i > 0);
	print(s);
}`,
	},
	{
		name:    "flattened matrix",
		theorem: "range analysis + Theorem 2: subscript r*cols+c with proven-exact product",
		src: `
void main() {
	int rows = 50; int cols = 40;
	int[] m = new int[rows * cols];
	for (int r = 0; r < rows; r++) {
		for (int c = 0; c < cols; c++) { m[r * cols + c] = r + c; }
	}
	int s = 0;
	for (int r = 0; r < rows; r++) { s += m[r * cols + r % cols]; }
	print(s);
}`,
	},
	{
		name:    "step -2, Java maxlen (Figure 10: extension must stay)",
		theorem: "Theorem 4 fails: -2 < maxlen-1-0x7fffffff = -1",
		src:     fig10Src,
	},
	{
		name:    "step -2, maxlen 0x7fff0001 (Figure 10: extension removable)",
		theorem: "Theorem 4 holds: -2 >= maxlen-1-0x7fffffff = -65535",
		src:     fig10Src,
		maxLen:  0x7fff0001,
	},
}

// The start index arrives as a genuinely signed runtime value (a constant
// would have a zero upper half and Theorem 3 would apply regardless of
// maxlen).
const fig10Src = `
static int bias = 0;
int walk(int[] a, int start, int stop) {
	int t = 0;
	int i = start;
	do { i = i - 2; t += a[i]; } while (i > stop);
	return t;
}
void main() {
	int[] a = new int[256];
	for (int k = 0; k < a.length; k++) { a[k] = k; bias = bias - 1; }
	print(walk(a, bias + 506, 2));
}`

func main() {
	for _, d := range demos {
		base, err := signext.CompileSource(d.src, signext.Options{
			Variant: signext.VariantBaseline, Machine: signext.IA64, MaxArrayLen: d.maxLen,
		})
		if err != nil {
			log.Fatal(d.name, ": ", err)
		}
		full, err := signext.CompileSource(d.src, signext.Options{
			Variant: signext.VariantAll, Machine: signext.IA64, MaxArrayLen: d.maxLen,
			WithProfile: true,
		})
		if err != nil {
			log.Fatal(d.name, ": ", err)
		}
		b, err := base.Run()
		if err != nil {
			log.Fatal(d.name, ": ", err)
		}
		f, err := full.Run()
		if err != nil {
			log.Fatal(d.name, ": ", err)
		}
		if b.Output != f.Output {
			log.Fatalf("%s: MISCOMPILE\nbase %q\nfull %q", d.name, b.Output, f.Output)
		}
		fmt.Printf("%-55s %8d -> %6d dynamic extensions (%.2f%% remain)\n",
			d.name, b.DynamicExts, f.DynamicExts,
			100*float64(f.DynamicExts)/float64(b.DynamicExts))
		fmt.Printf("    %s\n", d.theorem)
		fmt.Printf("    output: %s\n\n", strings.TrimSpace(b.Output))
	}
}
