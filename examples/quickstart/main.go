// Quickstart: compile a MiniJava program with the paper's full algorithm,
// compare it against the unoptimized baseline, and show what happened.
package main

import (
	"fmt"
	"log"

	"signext"
)

const src = `
// Sum an int array backwards — the paper's running example shape
// (Figures 3, 7 and 8): a count-down loop whose index extension and
// accumulator extension both sit in the hot loop until the optimizer
// moves them out.
int sumDown(int[] a, int start) {
	int t = 0;
	int i = a.length;
	do {
		i = i - 1;
		int j = a[i];
		j = j & 0x0fffffff;
		t += j;
	} while (i > start);
	return t;
}

void main() {
	int[] a = new int[1000];
	for (int i = 0; i < a.length; i++) { a[i] = i * 2654435761; }
	print(sumDown(a, 0));
	double d = sumDown(a, 500);
	print(d / 3.0);
}
`

func main() {
	baseline, err := signext.CompileSource(src, signext.Options{
		Variant: signext.VariantBaseline,
		Machine: signext.IA64,
	})
	if err != nil {
		log.Fatal(err)
	}
	full, err := signext.CompileSource(src, signext.Options{
		Variant:     signext.VariantAll,
		Machine:     signext.IA64,
		WithProfile: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	ref, err := full.ReferenceRun()
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseline.Run()
	if err != nil {
		log.Fatal(err)
	}
	opt, err := full.Run()
	if err != nil {
		log.Fatal(err)
	}
	if base.Output != ref || opt.Output != ref {
		log.Fatalf("outputs diverged!\nref: %q\nbase: %q\nopt: %q", ref, base.Output, opt.Output)
	}

	fmt.Print("program output:\n" + ref + "\n")
	fmt.Printf("baseline:      %6d dynamic 32-bit sign extensions, %8d cycles\n",
		base.DynamicExts, base.Cycles)
	fmt.Printf("new algorithm: %6d dynamic 32-bit sign extensions, %8d cycles\n",
		opt.DynamicExts, opt.Cycles)
	fmt.Printf("eliminated %.2f%% of dynamic extensions, %.2f%% faster under the cycle model\n",
		100-100*float64(opt.DynamicExts)/float64(base.DynamicExts),
		(float64(base.Cycles)/float64(opt.Cycles)-1)*100)
	fmt.Printf("\nstatic: %d extensions generated then removed, %d inserted, %d remain\n",
		full.Eliminated(), full.Inserted(), full.StaticExts())

	fmt.Println("\noptimized IR of sumDown:")
	fmt.Println(full.Format("sumDown"))
}
