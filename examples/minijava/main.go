// Minijava compiles a complete program through the whole pipeline — the
// MiniJava frontend, the interpreter profiling tier, and every algorithm
// variant of the paper's Tables 1 and 2 — on both machine models, printing a
// per-variant comparison like cmd/sxelim -compare.
package main

import (
	"fmt"
	"log"

	"signext"
)

const src = `
// A little checksum/compression mix: byte arrays (8-bit extensions),
// shifts and masks, a hash table, and int->double at the end.
static int seed = 1234567;

int rnd() {
	seed = seed * 1103515245 + 12345;
	return (seed >>> 7) & 0xffffff;
}

int hashStep(int h, int v) {
	h = (h << 5) - h + v;   // h*31 + v
	return h;
}

void main() {
	int n = 2048;
	byte[] data = new byte[n];
	for (int i = 0; i < n; i++) { data[i] = (byte) rnd(); }

	int[] hist = new int[256];
	for (int i = 0; i < n; i++) { hist[data[i] & 0xff]++; }

	int h = 17;
	for (int i = n - 1; i >= 0; i--) { h = hashStep(h, data[i]); }

	long total = 0;
	int max = 0;
	for (int b = 0; b < 256; b++) {
		total += hist[b];
		if (hist[b] > max) { max = hist[b]; }
	}
	print(h);
	print(total);
	print(max);
	double entropyish = 0.0;
	for (int b = 0; b < 256; b++) {
		if (hist[b] > 0) {
			double p = hist[b];
			entropyish = entropyish - p * log(p / n);
		}
	}
	print(entropyish / n);
}
`

func main() {
	for _, mach := range []signext.Machine{signext.IA64, signext.PPC64} {
		fmt.Printf("=== machine model: %v ===\n", mach)
		var ref string
		var base int64
		for _, v := range signext.Variants {
			res, err := signext.CompileSource(src, signext.Options{
				Variant: v, Machine: mach, WithProfile: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			run, err := res.Run()
			if err != nil {
				log.Fatalf("%v/%v: %v", mach, v, err)
			}
			if ref == "" {
				ref = run.Output
			} else if run.Output != ref {
				log.Fatalf("%v/%v: output diverged", mach, v)
			}
			if v == signext.VariantBaseline {
				base = run.DynamicExts
			}
			pct := 100.0
			if base > 0 {
				pct = 100 * float64(run.DynamicExts) / float64(base)
			}
			fmt.Printf("  %-28v dyn ext32 %9d (%6.2f%%)  all widths %9d  cycles %10d\n",
				v, run.DynamicExts, pct, run.AllExts, run.Cycles)
		}
		fmt.Println("  program output:")
		fmt.Print(indent(ref))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
